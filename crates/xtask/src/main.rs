//! Repo automation (the cargo-xtask pattern: plain Rust instead of a
//! Makefile, so contributors need nothing but the toolchain).
//!
//! `cargo xtask ci` runs the **exact** lint + test + bench-gate
//! sequence `.github/workflows/ci.yml` runs, in the same order with the
//! same flags, so "CI is red but it worked on my machine" reduces to
//! one local command. Subsets:
//!
//! * `cargo xtask lint` — clippy, rustfmt, rustdoc (the `lint` job);
//! * `cargo xtask test` — release build + workspace tests (the first
//!   half of `build-test`);
//! * `cargo xtask examples` — *run* the smoke examples (the `examples`
//!   job; clippy only proves they compile);
//! * `cargo xtask api-check` — the typestate API surface: the
//!   compile-fail doctest suites of `mirabel-flexoffer` and
//!   `mirabel-net` (invalid lifecycle transitions must not compile)
//!   plus their rustdoc under `-D warnings`;
//! * `cargo xtask bench-gate` — session/stress/ingest/planning/spatial/
//!   net/forecast/columnar harnesses plus the `bench_diff` regression
//!   gate (the second half);
//! * `cargo xtask baseline` — refresh `BENCH_baseline.json` from fresh
//!   harness runs on this machine.

use std::process::{Command, ExitCode};

/// One pipeline step: a display name plus the exact command CI runs.
struct Step {
    name: &'static str,
    program: &'static str,
    args: &'static [&'static str],
    env: &'static [(&'static str, &'static str)],
}

const LINT: &[Step] = &[
    Step {
        name: "clippy",
        program: "cargo",
        args: &["clippy", "--workspace", "--all-targets", "--locked", "--", "-D", "warnings"],
        env: &[],
    },
    Step { name: "rustfmt", program: "cargo", args: &["fmt", "--check"], env: &[] },
    Step {
        name: "rustdoc",
        program: "cargo",
        args: &["doc", "--workspace", "--no-deps", "--locked"],
        env: &[("RUSTDOCFLAGS", "-D warnings")],
    },
];

const TEST: &[Step] = &[
    Step {
        name: "build (release)",
        program: "cargo",
        args: &["build", "--workspace", "--release", "--locked"],
        env: &[],
    },
    Step {
        name: "test",
        program: "cargo",
        args: &["test", "--workspace", "-q", "--locked"],
        env: &[],
    },
    Step {
        name: "doc-tests",
        program: "cargo",
        args: &["test", "--workspace", "--doc", "--locked"],
        env: &[],
    },
];

/// The typestate API gate: the `compile_fail` doctests are the proof
/// that invalid offer/connection transitions do not compile, and the
/// crates' rustdoc is the spec they quote — both must stay green.
const API_CHECK: &[Step] = &[
    Step {
        name: "flexoffer lifecycle doctests (compile-fail suite)",
        program: "cargo",
        args: &["test", "-p", "mirabel-flexoffer", "--doc", "--locked"],
        env: &[],
    },
    Step {
        name: "net connection doctests (compile-fail suite)",
        program: "cargo",
        args: &["test", "-p", "mirabel-net", "--doc", "--locked"],
        env: &[],
    },
    Step {
        name: "API rustdoc (-D warnings)",
        program: "cargo",
        args: &["doc", "-p", "mirabel-flexoffer", "-p", "mirabel-net", "--no-deps", "--locked"],
        env: &[("RUSTDOCFLAGS", "-D warnings")],
    },
];

const BENCH_GATE: &[Step] = &[
    Step {
        name: "session bench (warm >= 10x cold)",
        program: "cargo",
        args: &["bench", "-p", "mirabel-bench", "--bench", "session", "--locked"],
        env: &[],
    },
    Step {
        name: "stress harness (determinism + speedup gates)",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "stress",
            "--",
            "--users",
            "8",
            "--commands",
            "300",
            "--threads",
            "1,2,4,8",
            "--assert-speedup",
            "2.0",
            "--out",
            "BENCH_stress.json",
        ],
        env: &[],
    },
    Step {
        name: "ingest harness (epoch integrity + publish gates)",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "ingest",
            "--",
            "--readers",
            "4",
            "--commands",
            "24",
            "--threads",
            "1,2,4,8",
            "--assert-publish-ms",
            "100",
            "--assert-bulk-publish-ms",
            "100",
            "--out",
            "BENCH_ingest.json",
        ],
        env: &[],
    },
    Step {
        name: "planning harness (incremental >= 10x, warm cell re-plan >= 5x + determinism gates)",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "planning",
            "--",
            "--offers",
            "10000",
            "--partitions",
            "64",
            "--threads",
            "1,2,4,8",
            "--assert-speedup",
            "10",
            "--assert-bundle-speedup",
            "5",
            "--assert-bundle-replan-speedup",
            "5",
            "--out",
            "BENCH_planning.json",
        ],
        env: &[],
    },
    Step {
        name: "spatial harness (O(region) speedup + heatmap determinism gates)",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "spatial",
            "--",
            "--min-facts",
            "1000000",
            "--assert-speedup",
            "10",
            "--assert-publish-ms",
            "100",
            "--out",
            "BENCH_spatial.json",
        ],
        env: &[],
    },
    Step {
        name: "net harness (wire == in-process gates)",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "net",
            "--",
            "--clients",
            "256",
            "--commands",
            "20",
            "--repeats",
            "2",
            "--out",
            "BENCH_net.json",
        ],
        env: &[],
    },
    Step {
        name: "forecast harness (executions-beat-envelope gate)",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "forecast",
            "--",
            "--prosumers",
            "120",
            "--days",
            "5",
            "--eval-days",
            "3",
            "--out",
            "BENCH_forecast.json",
        ],
        env: &[],
    },
    Step {
        name: "columnar harness (equality gates + filtered pushdown >= 3x over the plain scan)",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "columnar",
            "--",
            "--prosumers",
            "150",
            "--days",
            "2",
            "--repeats",
            "3",
            "--filter-facts",
            "1000000",
            "--assert-filtered-speedup",
            "3",
            "--out",
            "BENCH_columnar.json",
        ],
        env: &[],
    },
    Step {
        name: "bench gate (±20% vs BENCH_baseline.json)",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "bench_diff",
            "--",
            "--baseline",
            "BENCH_baseline.json",
            "--stress",
            "BENCH_stress.json",
            "--ingest",
            "BENCH_ingest.json",
            "--planning",
            "BENCH_planning.json",
            "--spatial",
            "BENCH_spatial.json",
            "--net",
            "BENCH_net.json",
            "--forecast",
            "BENCH_forecast.json",
            "--columnar",
            "BENCH_columnar.json",
            "--tolerance",
            "0.20",
        ],
        env: &[],
    },
];

/// The examples smoke job: examples are *run*, not just
/// clippy-compiled, so a drifting API or a panicking main surfaces in
/// CI instead of in a reader's terminal.
/// The nightly connection-scale run, runnable locally: 1000
/// simultaneous connections against the event-loop server (mirrors the
/// `BENCH_net_scale_nightly.json` CI step).
const NET_SCALE: &[Step] = &[Step {
    name: "net harness (connection scale: 1000 simultaneous connections)",
    program: "cargo",
    args: &[
        "run",
        "--release",
        "--locked",
        "-p",
        "mirabel-bench",
        "--bin",
        "net",
        "--",
        "--clients",
        "1000",
        "--commands",
        "12",
        "--reconnect-rate",
        "0.0",
        "--resume-share",
        "0.0",
        "--repeats",
        "1",
        "--out",
        "BENCH_net_scale.json",
    ],
    env: &[],
}];

const EXAMPLES: &[Step] = &[
    Step {
        name: "example: quickstart",
        program: "cargo",
        args: &["run", "--release", "--locked", "--example", "quickstart"],
        env: &[],
    },
    Step {
        name: "example: enterprise_day_ahead",
        program: "cargo",
        args: &["run", "--release", "--locked", "--example", "enterprise_day_ahead"],
        env: &[],
    },
    Step {
        name: "example: net_quickstart",
        program: "cargo",
        args: &["run", "--release", "--locked", "--example", "net_quickstart"],
        env: &[],
    },
];

const BASELINE: &[Step] = &[
    Step {
        name: "stress harness",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "stress",
            "--",
            "--users",
            "8",
            "--commands",
            "300",
            "--threads",
            "1,2,4,8",
            "--out",
            "BENCH_stress.json",
        ],
        env: &[],
    },
    Step {
        name: "ingest harness",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "ingest",
            "--",
            "--readers",
            "4",
            "--commands",
            "24",
            "--threads",
            "1,2,4,8",
            "--out",
            "BENCH_ingest.json",
        ],
        env: &[],
    },
    Step {
        name: "planning harness",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "planning",
            "--",
            "--offers",
            "10000",
            "--partitions",
            "64",
            "--threads",
            "1,2,4,8",
            "--out",
            "BENCH_planning.json",
        ],
        env: &[],
    },
    Step {
        name: "spatial harness",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "spatial",
            "--",
            "--out",
            "BENCH_spatial.json",
        ],
        env: &[],
    },
    Step {
        name: "net harness",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "net",
            "--",
            "--clients",
            "256",
            "--commands",
            "20",
            "--repeats",
            "2",
            "--out",
            "BENCH_net.json",
        ],
        env: &[],
    },
    Step {
        name: "forecast harness",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "forecast",
            "--",
            "--out",
            "BENCH_forecast.json",
        ],
        env: &[],
    },
    Step {
        name: "columnar harness",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "columnar",
            "--",
            "--out",
            "BENCH_columnar.json",
        ],
        env: &[],
    },
    Step {
        name: "write BENCH_baseline.json",
        program: "cargo",
        args: &[
            "run",
            "--release",
            "--locked",
            "-p",
            "mirabel-bench",
            "--bin",
            "bench_diff",
            "--",
            "--baseline",
            "BENCH_baseline.json",
            "--stress",
            "BENCH_stress.json",
            "--ingest",
            "BENCH_ingest.json",
            "--planning",
            "BENCH_planning.json",
            "--spatial",
            "BENCH_spatial.json",
            "--net",
            "BENCH_net.json",
            "--forecast",
            "BENCH_forecast.json",
            "--columnar",
            "BENCH_columnar.json",
            "--write-baseline",
        ],
        env: &[],
    },
];

fn run(steps: &[&[Step]]) -> ExitCode {
    let total: usize = steps.iter().map(|s| s.len()).sum();
    let mut done = 0;
    for step in steps.iter().copied().flatten() {
        done += 1;
        println!("\n[{done}/{total}] {} — {} {}", step.name, step.program, step.args.join(" "));
        let mut cmd = Command::new(step.program);
        cmd.args(step.args);
        for (k, v) in step.env {
            cmd.env(k, v);
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("\nFAILED at step [{done}/{total}] {} ({status})", step.name);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("\ncannot spawn {}: {e}", step.program);
                return ExitCode::FAILURE;
            }
        }
    }
    println!("\nall {total} steps passed");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let task = std::env::args().nth(1).unwrap_or_default();
    match task.as_str() {
        "ci" => run(&[LINT, TEST, API_CHECK, EXAMPLES, BENCH_GATE]),
        "lint" => run(&[LINT]),
        "test" => run(&[TEST]),
        "examples" => run(&[EXAMPLES]),
        "api-check" => run(&[API_CHECK]),
        "bench-gate" => run(&[BENCH_GATE]),
        "net-scale" => run(&[NET_SCALE]),
        "baseline" => run(&[BASELINE]),
        _ => {
            eprintln!(
                "usage: cargo xtask <task>\n\n\
                 tasks:\n\
                 \x20 ci          the full CI pipeline (lint + test + api-check + examples + bench-gate)\n\
                 \x20 lint        clippy + rustfmt + rustdoc, all -D warnings\n\
                 \x20 test        release build + workspace tests\n\
                 \x20 api-check   typestate compile-fail doctests + API rustdoc -D warnings\n\
                 \x20 examples    run (not just compile) the smoke examples\n\
                 \x20 bench-gate  benches, stress/ingest/planning/spatial/net/columnar harnesses, bench_diff gate\n\
                 \x20 net-scale   the nightly 1000-connection storm against the event-loop server\n\
                 \x20 baseline    refresh BENCH_baseline.json from this machine"
            );
            ExitCode::FAILURE
        }
    }
}
